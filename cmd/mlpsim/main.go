// Command mlpsim runs one benchmark model on the simulated baseline
// machine under a chosen L2 replacement policy and prints the full
// statistics the paper's experiments are built from. With -cores N it
// runs N cores — each with its own L1, MSHR file and workload from the
// comma-separated -bench mix — sharing the contended L2, and reports
// per-core plus aggregate statistics (see docs/MULTICORE.md). Multi-core
// runs execute on the parallel wavefront engine when -parallel allows it
// (default auto); parallel and serial results are bit-identical.
//
// Reports go to stdout; telemetry goes to files: -json swaps the text
// report for a machine-readable one (schema "mlpcache.run/v1"), -metrics
// streams a JSONL document, -trace-events streams the event trace in the
// encoding -trace-events-format selects (v1 JSONL, or the compact v2
// binary that mlptrace -events decodes), -snapshot-interval adds
// periodic snapshot.* gauges to that stream, and
// -cpuprofile/-memprofile write pprof profiles. docs/OBSERVABILITY.md
// documents every metric name, event type, schema and record layout.
//
// Examples:
//
//	mlpsim -bench mcf -policy lru -n 2000000
//	mlpsim -bench mcf -policy lin -lambda 4 -n 2000000
//	mlpsim -bench ammp -policy sbar -leaders 32 -n 4000000 -series
//	mlpsim -bench mcf -json -metrics out.jsonl -trace-events ev.jsonl
//	mlpsim -bench mcf -trace-events ev.bin -trace-events-format v2 -snapshot-interval 250000
//	mlpsim -bench mcf,art -cores 2 -policy sbar -n 2000000
//	mlpsim -bench mcf,art -cores 4 -parallel on -n 2000000
//	mlpsim -bench mcf -policy lru -oracle
//	mlpsim -bench mcf -policy bandit
//	mlpsim -bench mcf -policy learned -model mcf.model
//	mlpsim -bench mcf -n 100000000 -timeout 30s
//	mlpsim -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mlpcache/internal/bpred"
	"mlpcache/internal/learn"
	"mlpcache/internal/metrics"
	"mlpcache/internal/oracle"
	"mlpcache/internal/prefetch"
	"mlpcache/internal/prof"
	"mlpcache/internal/sim"
	"mlpcache/internal/trace"
	"mlpcache/internal/workload"
)

func main() {
	var (
		bench       = flag.String("bench", "mcf", "benchmark model to run (see -list); with -cores N, a comma-separated mix (last entry repeats)")
		cores       = flag.Int("cores", 1, "cores sharing the contended L2 (multi-core mode when >1; core i seeds its model with seed+i)")
		parallelStr = flag.String("parallel", "auto", "multi-core engine: auto (parallel when eligible and >1 CPU), on (force; error if ineligible), off (serial interleave); results are bit-identical either way")
		policy      = flag.String("policy", "lru", "replacement policy: lru|fifo|random|nmru|lin|sbar|cbs-local|cbs-global|bandit|learned")
		modelPath   = flag.String("model", "", "trained model file for -policy learned (mlptrain output; empty: untrained default, behaves like LRU)")
		lambda      = flag.Int("lambda", 4, "LIN λ (also used inside SBAR/CBS)")
		leaders     = flag.Int("leaders", 32, "SBAR leader sets")
		pselBits    = flag.Int("psel", 0, "PSEL bits (0: policy default)")
		randDyn     = flag.Bool("rand-dynamic", false, "use rand-dynamic leader selection for SBAR")
		n           = flag.Uint64("n", 2_000_000, "instructions to simulate")
		timeout     = flag.Duration("timeout", 0, "abort the run after this wall-clock budget (0: none); exits 1")
		seed        = flag.Uint64("seed", 42, "workload seed")
		series      = flag.Bool("series", false, "print the Figure 11 time series")
		interval    = flag.Uint64("interval", 100_000, "time-series sample interval (instructions)")
		epoch       = flag.Uint64("epoch", 250_000, "rand-dynamic reselection epoch (instructions)")
		hist        = flag.Bool("hist", true, "print the mlp-cost histogram")
		list        = flag.Bool("list", false, "list benchmark models and exit")
		traceFile   = flag.String("trace", "", "replay a binary trace file instead of a benchmark model")
		pf          = flag.Bool("prefetch", false, "enable the L2 stride prefetcher")
		auditFlag   = flag.Bool("audit", false, "run the invariant auditor alongside the simulation")
		bp          = flag.Bool("bpred", false, "use a live gshare/per-address hybrid branch predictor instead of oracle flags")
		jsonOut     = flag.Bool("json", false, "print a machine-readable run report (mlpcache.run/v1) instead of text")
		metricsPath = flag.String("metrics", "", "write the run's metric set as JSONL (mlpcache.metrics/v1) to this file")
		eventsPath  = flag.String("trace-events", "", "stream simulator events to this file (see -trace-events-format)")
		evFormat    = flag.String("trace-events-format", "v1", "event-trace encoding: v1 (mlpcache.events/v1 JSONL) or v2 (compact binary; decode with mlptrace -events)")
		snapEvery   = flag.Uint64("snapshot-interval", 0, "emit snapshot.* gauge events into -trace-events every N retired instructions (0: off)")
		evSample    = flag.Uint64("trace-events-sample", 0, "keep every Nth traced event (0 or 1: all; run.start and snapshot.* always kept)")
		evFilter    = flag.String("trace-events-filter", "", "comma-separated event types to trace, e.g. miss,victim (empty: all; run.start always kept)")
		oracleFlag  = flag.Bool("oracle", false, "capture the L2 access stream and report offline oracle headroom (Belady, cost-weighted Belady, EHC)")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *list {
		for _, s := range workload.All() {
			fmt.Printf("%-9s %-3s paper LIN: %+.0f%% misses, %+.1f%% IPC\n",
				s.Name, s.Class, s.PaperLINMissPct, s.PaperLINIPCPct)
		}
		return
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlpsim: %v\n", err)
		os.Exit(1)
	}
	// os.Exit skips defers, so every exit path below funnels through
	// fatal or reaches the explicit stopProf at the end.
	fatal := func(code int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "mlpsim: "+format+"\n", args...)
		stopProf()
		os.Exit(code)
	}

	var parallelMode sim.ParallelMode
	switch *parallelStr {
	case "auto":
		parallelMode = sim.ParallelAuto
	case "on":
		parallelMode = sim.ParallelOn
	case "off":
		parallelMode = sim.ParallelOff
	default:
		fatal(2, "-parallel must be auto, on or off (got %q)", *parallelStr)
	}
	if parallelMode == sim.ParallelOn {
		// Fail these fast with a flag-level diagnostic instead of
		// surfacing sim.ErrBadConfig after workload construction.
		switch {
		case *cores <= 1:
			fatal(2, "-parallel on needs -cores > 1 (the parallel engine schedules cores, not a single stream)")
		case *auditFlag:
			fatal(2, "-parallel on does not support -audit (the auditor walks shared state mid-quantum)")
		}
	}

	var (
		src  trace.Source
		srcs []trace.Source // multi-core mode: one source per core
	)
	benchLabel := *bench
	if *cores > 1 {
		switch {
		case *cores > sim.MaxCores:
			fatal(2, "-cores must be at most %d", sim.MaxCores)
		case *traceFile != "":
			fatal(2, "-cores does not support -trace replay")
		case *oracleFlag:
			fatal(2, "-cores does not support -oracle")
		case *series:
			fatal(2, "-cores does not support -series")
		case *pf:
			fatal(2, "-cores does not support -prefetch")
		case *snapEvery > 0:
			fatal(2, "-cores does not support -snapshot-interval")
		}
		names := strings.Split(*bench, ",")
		var labels []string
		for i := 0; i < *cores; i++ {
			name := names[len(names)-1]
			if i < len(names) {
				name = names[i]
			}
			spec, ok := workload.ByName(strings.TrimSpace(name))
			if !ok {
				fatal(2, "unknown benchmark %q (try -list)", name)
			}
			srcs = append(srcs, spec.Build(*seed+uint64(i)))
			labels = append(labels, spec.Name)
		}
		benchLabel = strings.Join(labels, "+")
	} else if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(1, "%v", err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			fatal(1, "%v", err)
		}
		src = r
		benchLabel = *traceFile + " (trace replay)"
	} else {
		spec, ok := workload.ByName(*bench)
		if !ok {
			fatal(2, "unknown benchmark %q (try -list)", *bench)
		}
		src = spec.Build(*seed)
		benchLabel = fmt.Sprintf("%s (%s)", spec.Name, spec.Class)
	}

	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = *n
	cfg.Policy = sim.PolicySpec{
		Kind:        sim.PolicyKind(*policy),
		Lambda:      *lambda,
		LeaderSets:  *leaders,
		PselBits:    *pselBits,
		RandDynamic: *randDyn,
		Seed:        *seed,
		ModelPath:   *modelPath,
	}
	if *series {
		cfg.SampleInterval = *interval
	}
	if *randDyn {
		cfg.EpochInstructions = *epoch
	}
	if *pf {
		pcfg := prefetch.DefaultConfig()
		cfg.Prefetch = &pcfg
	}
	if *bp {
		bcfg := bpred.DefaultConfig()
		cfg.CPU.BranchPredictor = &bcfg
	}
	cfg.Audit = *auditFlag
	cfg.Parallel = parallelMode

	var (
		eventsFile *os.File
		tracer     metrics.FileTracer
	)
	if *snapEvery > 0 && *eventsPath == "" {
		fatal(2, "snapshot-interval needs -trace-events (snapshots are emitted into the event stream)")
	}
	if *eventsPath != "" {
		eventsFile, err = os.Create(*eventsPath)
		if err != nil {
			fatal(1, "%v", err)
		}
		tracer, err = metrics.NewFileTracer(eventsFile, *evFormat, metrics.RunHeader{
			Bench: *bench, Policy: cfg.Policy.String(), Seed: *seed,
		})
		if err != nil {
			fatal(2, "trace-events-format: %v", err)
		}
		cfg.Trace = tracer
		cfg.SnapshotInterval = *snapEvery
		if *evSample > 1 || *evFilter != "" {
			types, err := metrics.ParseEventFilter(*evFilter)
			if err != nil {
				fatal(2, "trace-events-filter: %v", err)
			}
			cfg.Trace = metrics.NewFilterTracer(tracer, *evSample, types)
		}
	}

	var capture *oracle.Capture
	if *oracleFlag {
		capture = oracle.NewCapture()
		cfg.Capture = capture
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *cores > 1 {
		mres, err := sim.RunMultiContext(ctx, cfg, srcs...)
		if err != nil {
			fatal(1, "%v", err)
		}
		reg := mres.Metrics()
		if tracer != nil {
			if err := tracer.Flush(); err != nil {
				fatal(1, "trace-events: %v", err)
			}
			if err := eventsFile.Close(); err != nil {
				fatal(1, "trace-events: %v", err)
			}
		}
		if *metricsPath != "" {
			f, err := os.Create(*metricsPath)
			if err != nil {
				fatal(1, "%v", err)
			}
			if err := reg.WriteJSONL(f, mres.Header(benchLabel, *seed)); err != nil {
				f.Close()
				fatal(1, "metrics: %v", err)
			}
			if err := f.Close(); err != nil {
				fatal(1, "metrics: %v", err)
			}
		}
		if *jsonOut {
			report := reg.BuildReport(mres.Header(benchLabel, *seed))
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(report); err != nil {
				fatal(1, "json: %v", err)
			}
		} else {
			printMultiReport(mres, benchLabel, *hist)
		}
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "mlpsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	res, err := sim.RunContext(ctx, cfg, src)
	if err != nil {
		fatal(1, "%v", err)
	}

	// One registry serves the -metrics file and the -json report; the
	// oracle comparison injects its families into the same set.
	reg := res.Metrics()
	var cmp oracle.Comparison
	if capture != nil {
		sets, err := cfg.L2.SetCount()
		if err != nil {
			fatal(1, "%v", err)
		}
		cmp = oracle.Compare(capture.Log(), sets, cfg.L2.Assoc)
		cmp.Observe(reg)
	}

	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			fatal(1, "trace-events: %v", err)
		}
		if err := eventsFile.Close(); err != nil {
			fatal(1, "trace-events: %v", err)
		}
	}
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fatal(1, "%v", err)
		}
		if err := reg.WriteJSONL(f, res.Header(*bench, *seed)); err != nil {
			f.Close()
			fatal(1, "metrics: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal(1, "metrics: %v", err)
		}
	}

	if *jsonOut {
		report := reg.BuildReport(res.Header(*bench, *seed))
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal(1, "json: %v", err)
		}
	} else {
		printReport(res, benchLabel, *hist)
		if capture != nil {
			printOracle(cmp)
		}
	}

	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "mlpsim: %v\n", err)
		os.Exit(1)
	}
}

// printLearn renders the learned-eviction accounting (bandit or
// predictor runs; nil otherwise).
func printLearn(s *learn.Stats) {
	if s == nil {
		return
	}
	fmt.Printf("learned: %d victims; %d would-have-hit / %d confirmed sampled misses\n",
		s.Victims, s.GhostHits, s.Confirmed)
	if pulls := s.ArmRecency + s.ArmProtect + s.ArmFrequency + s.ArmCost + s.ArmScatter; pulls > 0 {
		fmt.Printf("  bandit arms: recency %d, protect %d, frequency %d, cost %d, scatter %d\n",
			s.ArmRecency, s.ArmProtect, s.ArmFrequency, s.ArmCost, s.ArmScatter)
		fmt.Printf("  arm values: recency %+.4f, protect %+.4f, frequency %+.4f, cost %+.4f, scatter %+.4f\n",
			s.WeightRecency, s.WeightProtect, s.WeightFrequency, s.WeightCost, s.WeightScatter)
	}
	if s.TrainedFills+s.UntrainedFills > 0 {
		fmt.Printf("  model fills: %d trained, %d untrained\n", s.TrainedFills, s.UntrainedFills)
	}
}

// printOracle renders the offline oracle comparison to stdout.
func printOracle(cmp oracle.Comparison) {
	fmt.Printf("oracle: %d captured accesses replayed at %dx%d\n",
		cmp.Accesses, cmp.Sets, cmp.Assoc)
	fmt.Printf("  %-12s %10s %12s\n", "", "misses", "cost_q sum")
	fmt.Printf("  %-12s %10d %12d\n", "live", cmp.LiveMisses, cmp.LiveCost)
	for _, r := range []oracle.Result{cmp.EHC, cmp.OPT, cmp.CostOPT} {
		fmt.Printf("  %-12s %10d %12d\n", r.Name, r.Misses, r.CostQSum)
	}
	fmt.Printf("  headroom: %.1f%% of misses (vs belady), %.1f%% of cost (vs cost-belady)\n",
		cmp.MissHeadroomPct(), cmp.CostHeadroomPct())
}

// printMultiReport renders the human-readable multi-core run report:
// chip-wide aggregates over the shared clock, then one line per core.
func printMultiReport(res sim.MultiResult, benchLabel string, hist bool) {
	fmt.Printf("benchmark   %s\n", benchLabel)
	fmt.Printf("policy      %s   cores %d\n", res.Policy, len(res.Cores))
	fmt.Printf("instructions %d   cycles %d   aggregate IPC %.4f\n",
		res.Instructions(), res.Cycles, res.IPC())
	fmt.Printf("L2: %d hits / %d misses (%.2f%% miss); %d serviced, %d merged (%d cross-core)\n",
		res.L2.Hits, res.L2.Misses, 100*res.L2.MissRate(),
		res.Mem.DemandMisses, res.Mem.MergedMisses, res.CrossCoreMerges)
	fmt.Printf("MPKI %.3f   avg mlp-cost %.1f cycles   avg cost_q %.2f\n",
		res.MPKI(), res.AvgMLPCost(), res.AvgCostQ())
	fmt.Printf("DRAM: %d reads, %d writes; bank wait %d, bus wait %d cycles\n",
		res.DRAM.Reads, res.DRAM.Writes, res.DRAM.BankWaitCycles, res.DRAM.BusWaitCycles)
	fmt.Printf("%-6s %12s %8s %10s %10s %8s %10s %10s\n",
		"core", "instr", "IPC", "misses", "merged", "MPKI", "mlp-cost", "stalls")
	for i, c := range res.Cores {
		fmt.Printf("%-6d %12d %8.4f %10d %10d %8.3f %10.1f %10d\n",
			i, c.Instructions, c.IPC, c.Mem.DemandMisses, c.Mem.MergedMisses,
			c.MPKI(), c.AvgMLPCost(), c.CPU.MemStallCycles)
	}
	if res.Hybrid != nil {
		fmt.Printf("hybrid: PSEL +%d/-%d updates, victims %d LIN / %d LRU\n",
			res.Hybrid.PselIncrements, res.Hybrid.PselDecrements,
			res.Hybrid.LinVictims, res.Hybrid.LruVictims)
		for i, v := range res.PselValues {
			fmt.Printf("  thread %d selector %d\n", i, v)
		}
	}
	printLearn(res.Learn)
	if hist {
		fmt.Printf("mlp-cost distribution (%% of misses):\n")
		pct := res.CostHist.Percent()
		var labels, vals []string
		for i, p := range pct {
			labels = append(labels, fmt.Sprintf("%8s", res.CostHist.BinLabel(i)))
			vals = append(vals, fmt.Sprintf("%7.1f%%", p))
		}
		fmt.Printf("  %s\n  %s\n", strings.Join(labels, " "), strings.Join(vals, " "))
	}
	if res.Audit != nil {
		fmt.Printf("audit: %d passes, %d violations\n", res.Audit.Checks, len(res.Audit.Violations))
	}
}

// printReport renders the human-readable run report to stdout.
func printReport(res sim.Result, benchLabel string, hist bool) {
	fmt.Printf("benchmark   %s\n", benchLabel)
	fmt.Printf("policy      %s\n", res.Policy)
	fmt.Printf("instructions %d   cycles %d   IPC %.4f\n", res.Instructions, res.Cycles, res.IPC)
	fmt.Printf("L1: %d hits / %d misses (%.2f%% miss)\n",
		res.L1.Hits, res.L1.Misses, 100*res.L1.MissRate())
	fmt.Printf("L2: %d hits / %d misses (%.2f%% miss); %d serviced, %d merged, %.1f%% compulsory\n",
		res.L2.Hits, res.L2.Misses, 100*res.L2.MissRate(),
		res.Mem.DemandMisses, res.Mem.MergedMisses, res.CompulsoryPercent())
	fmt.Printf("MPKI %.3f   avg mlp-cost %.1f cycles   avg cost_q %.2f\n",
		res.MPKI(), res.AvgMLPCost(), res.AvgCostQ())
	fmt.Printf("mem stalls: %d cycles in %d episodes; full-window %d cycles\n",
		res.CPU.MemStallCycles, res.CPU.MemStallEpisodes, res.CPU.FullWindowCycles)
	fmt.Printf("DRAM: %d reads, %d writes; bank wait %d, bus wait %d cycles\n",
		res.DRAM.Reads, res.DRAM.Writes, res.DRAM.BankWaitCycles, res.DRAM.BusWaitCycles)
	fmt.Printf("MSHR: %d allocations, %d merges, %d rejects; peak occupancy %d\n",
		res.MSHR.Allocations, res.MSHR.Merges, res.MSHR.Rejects, res.MSHR.Peak)
	if d := res.Delta; d.Samples() > 0 {
		fmt.Printf("delta: <60 %.0f%%, 60-119 %.0f%%, >=120 %.0f%%, mean %.0f cycles (%d samples)\n",
			d.PercentLt60(), d.PercentGe60Lt120(), d.PercentGe120(), d.Mean(), d.Samples())
	}
	if res.Bpred.Lookups > 0 {
		fmt.Printf("bpred: %d lookups, %d mispredicts (%.2f%%), gshare used %.0f%%\n",
			res.Bpred.Lookups, res.Bpred.Mispredicts, 100*res.Bpred.MispredictRate(),
			100*float64(res.Bpred.GshareUsed)/float64(res.Bpred.Lookups))
	}
	if res.Mem.PrefetchIssued > 0 {
		fmt.Printf("prefetch: %d issued, %d useful, %d late, %d unused, %d dropped\n",
			res.Mem.PrefetchIssued, res.Mem.PrefetchUseful, res.Mem.PrefetchLate,
			res.Mem.PrefetchUnused, res.Mem.PrefetchDropped)
	}
	if res.Hybrid != nil {
		fmt.Printf("hybrid: PSEL +%d/-%d updates, victims %d LIN / %d LRU\n",
			res.Hybrid.PselIncrements, res.Hybrid.PselDecrements,
			res.Hybrid.LinVictims, res.Hybrid.LruVictims)
	}
	printLearn(res.Learn)
	if hist {
		fmt.Printf("mlp-cost distribution (%% of misses):\n")
		pct := res.CostHist.Percent()
		var labels, vals []string
		for i, p := range pct {
			labels = append(labels, fmt.Sprintf("%8s", res.CostHist.BinLabel(i)))
			vals = append(vals, fmt.Sprintf("%7.1f%%", p))
		}
		fmt.Printf("  %s\n  %s\n", strings.Join(labels, " "), strings.Join(vals, " "))
	}
	if res.Audit != nil {
		fmt.Printf("audit: %d passes, %d violations\n", res.Audit.Checks, len(res.Audit.Violations))
	}
	if res.Series != nil {
		fmt.Println("time series (instructions, IPC, MPKI, avg cost_q):")
		for i, p := range res.Series.IPC.Points {
			fmt.Printf("  %10d  %.4f  %8.3f  %.2f\n",
				p.Instructions, p.Value,
				res.Series.MPKI.Points[i].Value,
				res.Series.AvgCostQ.Points[i].Value)
		}
	}
}
