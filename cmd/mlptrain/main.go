// Command mlptrain closes the capture → train → evaluate loop of the
// learned eviction subsystem (docs/LEARNED.md): it runs one benchmark
// under LRU with an oracle capture attached, replays the captured L2
// demand stream per set under Belady's optimal policy, tabulates the
// expected hit count per block signature, and writes the result as a
// versioned mlpcache.model/v1 file that `mlpsim -policy learned -model`
// and the learned-headroom experiment load. Training is deterministic:
// the same benchmark, instruction budget and seeds produce a
// byte-identical model file.
//
// With -inspect the command instead decodes an existing model file and
// prints its header and table statistics; a corrupt or truncated file
// fails with one line on stderr and exit 1, like every binary codec in
// the repo (docs/ROBUSTNESS.md).
//
// Examples:
//
//	mlptrain -bench mcf -n 3000000 -o mcf.model
//	mlptrain -bench art -table-bits 18 -train-seed 7 -o art.model
//	mlptrain -inspect mcf.model
package main

import (
	"flag"
	"fmt"
	"os"

	"mlpcache/internal/learn"
	"mlpcache/internal/oracle"
	"mlpcache/internal/sim"
	"mlpcache/internal/workload"
)

func main() {
	var (
		bench     = flag.String("bench", "mcf", "benchmark model whose captured stream trains the table")
		n         = flag.Uint64("n", 3_000_000, "instructions to simulate for the capture")
		seed      = flag.Uint64("seed", 42, "workload seed for the capture run")
		trainSeed = flag.Uint64("train-seed", 49, "signature-hash salt stored in the model")
		tableBits = flag.Int("table-bits", learn.DefaultTableBits, "log2 of the signature-table size")
		out       = flag.String("o", "", "output model file (required unless -inspect)")
		inspect   = flag.String("inspect", "", "decode an existing model file and print its statistics")
	)
	flag.Parse()

	fatal := func(code int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "mlptrain: "+format+"\n", args...)
		os.Exit(code)
	}

	if *inspect != "" {
		m, err := learn.ReadModelFile(*inspect)
		if err != nil {
			fatal(1, "%v", err)
		}
		fmt.Printf("model       %s (%d bytes)\n", *inspect, len(m.Encode()))
		fmt.Printf("geometry    %d sets x %d ways\n", m.Sets, m.Assoc)
		fmt.Printf("table       %d entries (%d bits), seed %d\n", len(m.Table), m.TableBits, m.Seed)
		fmt.Printf("training    %d Belady generations, %d trained signatures (%.1f%% of table)\n",
			m.Generations, m.Trained(), 100*float64(m.Trained())/float64(len(m.Table)))
		return
	}
	if *out == "" {
		fatal(2, "-o is required (or use -inspect to read an existing model)")
	}

	spec, ok := workload.ByName(*bench)
	if !ok {
		fatal(2, "unknown benchmark %q (try mlpsim -list)", *bench)
	}
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = *n
	cfg.Policy = sim.PolicySpec{Kind: sim.PolicyLRU}
	capture := oracle.NewCapture()
	cfg.Capture = capture
	if _, err := sim.Run(cfg, spec.Build(*seed)); err != nil {
		fatal(1, "%v", err)
	}
	log := capture.Log()

	sets, err := cfg.L2.SetCount()
	if err != nil {
		fatal(1, "%v", err)
	}
	model, err := learn.Train(log.TrainingSamples(), learn.TrainConfig{
		Sets:      sets,
		Assoc:     cfg.L2.Assoc,
		TableBits: *tableBits,
		Seed:      *trainSeed,
	})
	if err != nil {
		fatal(1, "%v", err)
	}
	if err := model.WriteFile(*out); err != nil {
		fatal(1, "%v", err)
	}
	fmt.Printf("captured    %s: %d L2 demand accesses (%d misses) over %d instructions\n",
		spec.Name, log.Accesses(), log.LiveMisses, *n)
	fmt.Printf("trained     %d Belady generations -> %d trained signatures (%.1f%% of %d entries)\n",
		model.Generations, model.Trained(),
		100*float64(model.Trained())/float64(len(model.Table)), len(model.Table))
	fmt.Printf("model       %s (%d bytes, seed %d, geometry %dx%d)\n",
		*out, len(model.Encode()), model.Seed, model.Sets, model.Assoc)
}
