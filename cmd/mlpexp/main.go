// Command mlpexp regenerates the paper's tables and figures. Each
// experiment prints a paper-style table to stdout in the chosen -format
// (text, csv, or json); telemetry goes to files: -metrics appends one
// metrics document per fresh simulation, -trace-events streams the event
// trace with run.start boundaries between runs in the encoding
// -trace-events-format selects (v1 JSONL or the compact v2 binary that
// mlptrace -events decodes), -snapshot-interval adds periodic snapshot.*
// gauges per run, and -cpuprofile/-memprofile write pprof profiles. See
// DESIGN.md §4 for the experiment index and docs/OBSERVABILITY.md for
// the telemetry schemas and record layouts.
//
// -timeout bounds the whole invocation with the simulator's cooperative
// cancellation (exit 1 on expiry), and -serve runs the sweep-service
// daemon (cmd/mlpserve) in place of a batch of experiments.
//
// Examples:
//
//	mlpexp -run fig5 -n 3000000
//	mlpexp -run fig2,tab1
//	mlpexp -run all -timeout 10m
//	mlpexp -serve -addr 127.0.0.1:8321
//	mlpexp -run fig9 -format json -metrics runs.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mlpcache/internal/experiments"
	"mlpcache/internal/metrics"
	"mlpcache/internal/prof"
	"mlpcache/internal/service"
	"mlpcache/internal/sim"
)

func main() {
	var (
		run         = flag.String("run", "all", "comma-separated experiment ids: fig1..fig11, tab1..tab3, ovh, oracle-headroom, sens-mem, sens-cache, sens-mshr, sens-window, stab, cbs, multicore-contention, all, sens")
		n           = flag.Uint64("n", 3_000_000, "instructions per simulation run")
		seed        = flag.Uint64("seed", 42, "workload seed")
		bench       = flag.String("bench", "", "comma-separated benchmark subset (default: all 14)")
		workers     = flag.Int("workers", 0, "concurrent simulations per experiment (0: GOMAXPROCS, 1: serial)")
		format      = flag.String("format", "text", "output format: text, csv or json")
		metricsPath = flag.String("metrics", "", "append each fresh run's metric set as JSONL (mlpcache.metrics/v1) to this file")
		eventsPath  = flag.String("trace-events", "", "stream simulator events to this file (see -trace-events-format)")
		evFormat    = flag.String("trace-events-format", "v1", "event-trace encoding: v1 (mlpcache.events/v1 JSONL) or v2 (compact binary; decode with mlptrace -events)")
		snapEvery   = flag.Uint64("snapshot-interval", 0, "emit snapshot.* gauge events into -trace-events every N retired instructions per run (0: off)")
		evSample    = flag.Uint64("trace-events-sample", 0, "keep every Nth traced event (0 or 1: all; run.start and snapshot.* always kept)")
		evFilter    = flag.String("trace-events-filter", "", "comma-separated event types to trace, e.g. miss,victim (empty: all; run.start always kept)")
		timeout     = flag.Duration("timeout", 0, "abort the whole invocation after this wall-clock budget (0: none); exits 1")
		serve       = flag.Bool("serve", false, "run the sweep-service daemon (same as mlpserve) instead of a batch of experiments")
		addr        = flag.String("addr", "127.0.0.1:8321", "listen address for -serve")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *serve {
		os.Exit(serveDaemon(*addr, *workers))
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlpexp: %v\n", err)
		os.Exit(1)
	}
	fatal := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "mlpexp: "+format+"\n", args...)
		stopProf()
		os.Exit(1)
	}

	r := experiments.NewRunner(*n, *seed)
	if *bench != "" {
		r.Benchmarks = strings.Split(*bench, ",")
	}
	r.Workers = *workers
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		r.Context = ctx
	}

	var metricsFile *os.File
	if *metricsPath != "" {
		metricsFile, err = os.Create(*metricsPath)
		if err != nil {
			fatal("%v", err)
		}
		r.OnResult = func(b string, spec sim.PolicySpec, res sim.Result) {
			if err := res.Metrics().WriteJSONL(metricsFile, res.Header(b, *seed)); err != nil {
				fatal("metrics: %v", err)
			}
		}
	}
	var (
		eventsFile *os.File
		tracer     metrics.FileTracer
	)
	if *snapEvery > 0 && *eventsPath == "" {
		fatal("snapshot-interval needs -trace-events (snapshots are emitted into the event stream)")
	}
	if *eventsPath != "" {
		eventsFile, err = os.Create(*eventsPath)
		if err != nil {
			fatal("%v", err)
		}
		tracer, err = metrics.NewFileTracer(eventsFile, *evFormat, metrics.RunHeader{Seed: *seed})
		if err != nil {
			fatal("trace-events-format: %v", err)
		}
		r.Trace = tracer
		r.SnapshotInterval = *snapEvery
		if *evSample > 1 || *evFilter != "" {
			types, err := metrics.ParseEventFilter(*evFilter)
			if err != nil {
				fatal("trace-events-filter: %v", err)
			}
			r.Trace = metrics.NewFilterTracer(tracer, *evSample, types)
		}
	}

	ids := strings.Split(*run, ",")
	switch *run {
	case "all":
		ids = experiments.AllIDs()
	case "sens":
		ids = experiments.SensitivityIDs()
	}
	for _, id := range ids {
		var err error
		switch *format {
		case "csv":
			err = experiments.RunByIDCSV(r, strings.TrimSpace(id), os.Stdout)
		case "json":
			err = experiments.RunByIDJSON(r, strings.TrimSpace(id), os.Stdout)
		default:
			err = experiments.RunByID(r, strings.TrimSpace(id), os.Stdout)
		}
		if err != nil {
			fatal("%v", err)
		}
	}

	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			fatal("trace-events: %v", err)
		}
		if err := eventsFile.Close(); err != nil {
			fatal("trace-events: %v", err)
		}
	}
	if metricsFile != nil {
		if err := metricsFile.Close(); err != nil {
			fatal("metrics: %v", err)
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "mlpexp: %v\n", err)
		os.Exit(1)
	}
}

// serveDaemon is the -serve alias: a default-configured sweep service
// on addr, identical to running cmd/mlpserve without chaos flags.
func serveDaemon(addr string, workers int) int {
	s, err := service.New(service.Config{Workers: workers})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlpexp: %v\n", err)
		return 2
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlpexp: %v\n", err)
		return 1
	}
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	return service.Serve(s, l, sigs, 30*time.Second, os.Stderr)
}
