// Command mlpexp regenerates the paper's tables and figures. Each
// experiment prints a paper-style text table; see DESIGN.md §4 for the
// experiment index.
//
// Examples:
//
//	mlpexp -run fig5 -n 3000000
//	mlpexp -run fig2,tab1
//	mlpexp -run all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mlpcache/internal/experiments"
)

func main() {
	var (
		run    = flag.String("run", "all", "comma-separated experiment ids: fig1..fig11, tab1..tab3, ovh, sens-mem, sens-cache, sens-mshr, sens-window, all, sens")
		n      = flag.Uint64("n", 3_000_000, "instructions per simulation run")
		seed   = flag.Uint64("seed", 42, "workload seed")
		bench  = flag.String("bench", "", "comma-separated benchmark subset (default: all 14)")
		format = flag.String("format", "text", "output format: text or csv")
	)
	flag.Parse()

	r := experiments.NewRunner(*n, *seed)
	if *bench != "" {
		r.Benchmarks = strings.Split(*bench, ",")
	}

	ids := strings.Split(*run, ",")
	switch *run {
	case "all":
		ids = experiments.AllIDs()
	case "sens":
		ids = experiments.SensitivityIDs()
	}
	for _, id := range ids {
		var err error
		switch *format {
		case "csv":
			err = experiments.RunByIDCSV(r, strings.TrimSpace(id), os.Stdout)
		default:
			err = experiments.RunByID(r, strings.TrimSpace(id), os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlpexp: %v\n", err)
			os.Exit(1)
		}
	}
}
