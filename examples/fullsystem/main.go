// Fullsystem: the whole machine with every optional substrate enabled —
// live branch prediction, an L2 stride prefetcher, and SBAR replacement —
// compared against the paper's bare baseline. Shows how the pieces
// interact: on mcf the stride prefetcher eliminates the *strided* misses
// (which were already parallel and cheap), concentrating the remaining
// misses in the expensive bins — the cost non-uniformity SBAR then
// exploits on top.
package main

import (
	"fmt"

	"mlpcache"
)

func run(label string, configure func(*mlpcache.Config)) mlpcache.Result {
	cfg := mlpcache.DefaultConfig()
	cfg.MaxInstructions = 1_500_000
	configure(&cfg)
	bench, _ := mlpcache.Benchmark("mcf")
	res := mlpcache.MustRun(cfg, bench.Build(42))
	fmt.Printf("%-28s IPC %.4f   misses %6d   avg mlp-cost %5.1f   420+ bin %4.1f%%\n",
		label, res.IPC, res.MissesServiced(), res.AvgMLPCost(), res.CostHist.Percent()[7])
	return res
}

func main() {
	fmt.Println("mcf model, 1.5M instructions — building up the full system:")
	fmt.Println()

	base := run("baseline (LRU, oracle BP)", func(cfg *mlpcache.Config) {})

	run("+ live branch predictor", func(cfg *mlpcache.Config) {
		bp := mlpcache.DefaultBranchPredictorConfig()
		cfg.CPU.BranchPredictor = &bp
	})

	pfRes := run("+ stride prefetcher", func(cfg *mlpcache.Config) {
		bp := mlpcache.DefaultBranchPredictorConfig()
		cfg.CPU.BranchPredictor = &bp
		pf := mlpcache.DefaultPrefetchConfig()
		cfg.Prefetch = &pf
	})

	full := run("+ SBAR replacement", func(cfg *mlpcache.Config) {
		bp := mlpcache.DefaultBranchPredictorConfig()
		cfg.CPU.BranchPredictor = &bp
		pf := mlpcache.DefaultPrefetchConfig()
		cfg.Prefetch = &pf
		cfg.Policy = mlpcache.PolicySpec{Kind: mlpcache.PolicySBAR}
	})

	fmt.Println()
	fmt.Printf("full system vs baseline: IPC %+.1f%%\n", full.IPCDeltaPercent(base))
	fmt.Printf("prefetch coverage: %d issued, %d fully timely, %d late (latency partly hidden)\n",
		full.Mem.PrefetchIssued, full.Mem.PrefetchUseful, full.Mem.PrefetchLate)
	fmt.Printf("branch predictor: %.2f%% mispredict rate over %d branches\n",
		100*full.Bpred.MispredictRate(), full.Bpred.Lookups)
	if pfRes.AvgMLPCost() > base.AvgMLPCost() {
		fmt.Println("note how prefetching RAISED the average cost per remaining miss: it")
		fmt.Println("removed the prefetchable (strided, parallel) misses and left the")
		fmt.Println("pointer-chasing ones — sharpening exactly the non-uniformity that")
		fmt.Println("MLP-aware replacement feeds on.")
	}
}
