// Adaptive: a phase-alternating workload (the paper's ammp case study,
// Section 7.1) where LIN wins one phase and LRU the other. Fixed policies
// compromise; SBAR's set-sampling contest tracks the better policy
// through each phase and beats both — with a hardware budget of ~1.8 KB.
//
// The program prints the Figure 11 style time series so the phase
// tracking is visible: watch the "policy" column flip at phase
// boundaries.
package main

import (
	"fmt"

	"mlpcache"
)

// workload alternates two phases:
//   - phase A: an isolated-miss chase thrashed by a streaming sweep —
//     LIN retains the chase and wins big;
//   - phase B: an in-cache parallelism-2 loop that phase A's cost_q=7
//     residue starves under LIN — LRU ages the residue out and wins.
func workload(seed uint64) mlpcache.Source {
	chase := mlpcache.MixPart{
		Src: mlpcache.NewPointerChase(mlpcache.ChaseConfig{
			Base: 1 << 33, Blocks: 8000, Gap: 8, Touches: 2, Seed: seed + 1}),
		Weight: 1.3, Chunk: 24 * 11,
	}
	sweep := mlpcache.MixPart{
		Src: mlpcache.NewStream(mlpcache.StreamConfig{
			Base: 2 << 33, Blocks: 24_000, Gap: 8, Touches: 2, Seed: seed + 2}),
		Weight: 6, Chunk: 16 * 11,
	}
	phaseA := mlpcache.NewMix(seed+10, chase, sweep)

	loopParts := make([]mlpcache.MixPart, 2)
	for i := range loopParts {
		loopParts[i] = mlpcache.MixPart{
			Src: mlpcache.NewPointerChase(mlpcache.ChaseConfig{
				Base: 3<<33 + uint64(i)*5250*64, Blocks: 5250, Gap: 6, Touches: 2,
				Seed: seed + 3 + uint64(i)}),
			Weight: 1, Chunk: 1,
		}
	}
	phaseB := mlpcache.NewMix(seed+20, loopParts...)

	return mlpcache.NewPhases(
		mlpcache.Phase{Src: phaseA, Len: 500_000},
		mlpcache.Phase{Src: phaseB, Len: 450_000},
	)
}

func main() {
	const instructions = 3_000_000
	results := map[mlpcache.PolicyKind]mlpcache.Result{}
	for _, kind := range []mlpcache.PolicyKind{
		mlpcache.PolicyLRU, mlpcache.PolicyLIN, mlpcache.PolicySBAR,
	} {
		cfg := mlpcache.DefaultConfig()
		cfg.MaxInstructions = instructions
		cfg.Policy = mlpcache.PolicySpec{Kind: kind}
		cfg.SampleInterval = 100_000
		results[kind] = mlpcache.MustRun(cfg, workload(42))
	}

	lru, lin, sbar := results[mlpcache.PolicyLRU], results[mlpcache.PolicyLIN], results[mlpcache.PolicySBAR]
	fmt.Println("phase-alternating workload (the ammp scenario):")
	fmt.Printf("  LRU  IPC %.4f\n", lru.IPC)
	fmt.Printf("  LIN  IPC %.4f (%+.1f%%) — phase-A win minus phase-B loss\n",
		lin.IPC, lin.IPCDeltaPercent(lru))
	fmt.Printf("  SBAR IPC %.4f (%+.1f%%) — tracks the better policy per phase\n",
		sbar.IPC, sbar.IPCDeltaPercent(lru))
	if sbar.IPC <= lin.IPC || sbar.IPC <= lru.IPC {
		fmt.Println("  (unexpected: SBAR should beat both fixed policies here)")
	}

	fmt.Println("\ntime series (per 100K instructions):")
	fmt.Printf("  %10s  %9s %9s %9s  %s\n", "instr", "IPC lru", "IPC lin", "IPC sbar", "sbar policy")
	for i := range sbar.Series.IPC.Points {
		sel := "LRU"
		if sbar.Series.UsingLIN.Points[i].Value > 0.5 {
			sel = "LIN"
		}
		fmt.Printf("  %10d  %9.4f %9.4f %9.4f  %s\n",
			sbar.Series.IPC.Points[i].Instructions,
			lru.Series.IPC.Points[i].Value,
			lin.Series.IPC.Points[i].Value,
			sbar.Series.IPC.Points[i].Value,
			sel)
	}
}
