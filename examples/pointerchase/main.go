// Pointerchase: build a custom workload from the generator combinators —
// a linked-list traversal (isolated misses) fighting a streaming sweep
// for cache space — and watch the isolated misses disappear under
// MLP-aware replacement.
//
// This is the paper's core scenario distilled: both policies service the
// same number of memory requests per iteration under LRU, but the
// isolated ones each stall the pipeline for the full 444-cycle memory
// latency while the streaming ones amortize it across the whole
// instruction window.
package main

import (
	"fmt"

	"mlpcache"
)

func workload(seed uint64) mlpcache.Source {
	// A 5000-block linked list, revisited for ever: every miss is
	// isolated because each load's address depends on the previous
	// load's data.
	list := mlpcache.NewPointerChase(mlpcache.ChaseConfig{
		Base:   1 << 33,
		Blocks: 5000,
		Gap:    10, // pointer arithmetic between hops
		Seed:   seed,
	})
	// A 30000-block array swept with independent loads: misses overlap
	// up to the window and MSHR limits.
	array := mlpcache.NewStream(mlpcache.StreamConfig{
		Base:   2 << 33,
		Blocks: 30_000,
		Gap:    8,
		Seed:   seed + 1,
	})
	// Interleave in coarse chunks so each component's misses keep
	// their natural memory-level parallelism.
	return mlpcache.NewMix(seed,
		mlpcache.MixPart{Src: list, Weight: 1, Chunk: 24 * 11},
		mlpcache.MixPart{Src: array, Weight: 4, Chunk: 16 * 9},
	)
}

func main() {
	const instructions = 1_500_000
	fmt.Println("linked list (isolated misses) vs array sweep (parallel misses)")
	fmt.Println("cache: 1MB 16-way — too small for both working sets")
	fmt.Println()

	var base mlpcache.Result
	for _, kind := range []mlpcache.PolicyKind{mlpcache.PolicyLRU, mlpcache.PolicyLIN} {
		cfg := mlpcache.DefaultConfig()
		cfg.MaxInstructions = instructions
		cfg.Policy = mlpcache.PolicySpec{Kind: kind, Lambda: 4}
		res := mlpcache.MustRun(cfg, workload(7))

		isolatedPct := res.CostHist.Percent()[7]
		fmt.Printf("%-5s IPC %.4f   misses %6d   isolated (420+ cycles): %.1f%%   mem-stall %d cycles\n",
			kind, res.IPC, res.MissesServiced(), isolatedPct, res.CPU.MemStallCycles)
		if kind == mlpcache.PolicyLRU {
			base = res
			continue
		}
		fmt.Printf("\nLIN vs LRU: IPC %+.1f%%, misses %+.1f%%\n",
			res.IPCDeltaPercent(base), res.MissDeltaPercent(base))
		fmt.Println("The list earns cost_q=7 on every miss; λ·cost_q = 28 outranks any")
		fmt.Println("recency position, so LIN pins the list and sacrifices array blocks —")
		fmt.Println("more total misses would even be acceptable, because each avoided")
		fmt.Println("isolated miss saves a full memory round-trip of stall.")
	}
}
