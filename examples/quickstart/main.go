// Quickstart: simulate one benchmark on the paper's baseline machine
// under LRU, LIN and SBAR, and print the comparison the paper's Figure 9
// makes — including the mlp-cost distribution that motivates the whole
// mechanism.
package main

import (
	"fmt"
	"os"

	"mlpcache"
)

func main() {
	const instructions = 1_500_000
	bench, ok := mlpcache.Benchmark("mcf")
	if !ok {
		fmt.Fprintln(os.Stderr, "quickstart: mcf model missing")
		os.Exit(1)
	}
	fmt.Printf("benchmark: %s — %s\n\n", bench.Name, bench.Summary)

	var baseline mlpcache.Result
	for _, spec := range []mlpcache.PolicySpec{
		{Kind: mlpcache.PolicyLRU},
		{Kind: mlpcache.PolicyLIN, Lambda: 4},
		{Kind: mlpcache.PolicySBAR},
	} {
		cfg := mlpcache.DefaultConfig()
		cfg.MaxInstructions = instructions
		cfg.Policy = spec
		res, err := mlpcache.Run(cfg, bench.Build(42))
		if err != nil {
			fmt.Fprintln(os.Stderr, "quickstart:", err)
			os.Exit(1)
		}

		if spec.Kind == mlpcache.PolicyLRU {
			baseline = res
			fmt.Printf("%-12s IPC %.4f  misses %d  avg mlp-cost %.0f cycles\n",
				res.Policy, res.IPC, res.MissesServiced(), res.AvgMLPCost())
			fmt.Printf("%-12s mlp-cost distribution: %s\n",
				"", res.CostHist.Sparkline())
			continue
		}
		fmt.Printf("%-12s IPC %.4f (%+.1f%%)  misses %d (%+.1f%%)\n",
			res.Policy, res.IPC, res.IPCDeltaPercent(baseline),
			res.MissesServiced(), res.MissDeltaPercent(baseline))
	}

	fmt.Println("\nLIN retains the isolated-miss region (cost_q=7 outranks recency),")
	fmt.Println("eliminating the misses that stall the window longest; SBAR keeps that")
	fmt.Println("win while protecting workloads where the cost signal misleads.")
}
