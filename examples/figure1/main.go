// Figure 1, live: the paper's motivating example, built directly from the
// public API rather than the experiment harness. A loop touches parallel
// blocks P1..P4 twice and serial blocks S1..S3 once per iteration; a
// 4-entry fully-associative cache cannot hold everything. Belady's OPT
// minimizes misses yet stalls four times per iteration; a simple
// MLP-aware policy takes two extra misses but halves the stalls.
package main

import (
	"fmt"

	"mlpcache"
)

// One iteration: A→B touches P1..P4, B→C touches them in reverse, then
// S1, S2, S3 in isolation. Misses inside one interval overlap in the
// instruction window (one stall); the S accesses stall individually.
var intervals = [][]uint64{
	{0, 1, 2, 3}, // P1 P2 P3 P4
	{3, 2, 1, 0}, // P4 P3 P2 P1
	{4},          // S1
	{5},          // S2
	{6},          // S3
}

func main() {
	const iters, warmup = 200, 20
	var stream []uint64
	var intervalOf []int
	g := 0
	for it := 0; it < iters; it++ {
		for _, iv := range intervals {
			stream = append(stream, iv...)
			for range iv {
				intervalOf = append(intervalOf, g)
			}
			g++
		}
	}

	// Belady's OPT via the library; LRU via a 4-way single-set cache;
	// the MLP-aware policy of the example via a custom cache.Policy
	// built with NewCostAware over pre-assigned costs: S blocks carry
	// cost_q=7 (isolated), P blocks cost_q=1 (parallel). With λ=4 the
	// LIN score then evicts least-recent P blocks first — exactly the
	// example's policy.
	opt := mlpcache.SimulateOPT(stream, 1, 4)

	lruMisses, lruStalls := simulate(stream, intervalOf, warmup, iters,
		mlpcache.NewLRUPolicy(), map[uint64]uint8{})
	costs := map[uint64]uint8{0: 1, 1: 1, 2: 1, 3: 1, 4: 7, 5: 7, 6: 7}
	mlpMisses, mlpStalls := simulate(stream, intervalOf, warmup, iters,
		mlpcache.NewLIN(4), costs)

	optMisses, optStalls := analyzeOPT(opt, intervalOf, warmup, iters)

	fmt.Println("Figure 1 — per loop iteration (steady state):")
	fmt.Printf("  %-10s  %6s  %6s\n", "policy", "misses", "stalls")
	fmt.Printf("  %-10s  %6.0f  %6.0f   (paper: 4, 4)\n", "Belady OPT", optMisses, optStalls)
	fmt.Printf("  %-10s  %6.0f  %6.0f   (paper: 6, 4)\n", "LRU", lruMisses, lruStalls)
	fmt.Printf("  %-10s  %6.0f  %6.0f   (paper: 6, 2)\n", "MLP-aware", mlpMisses, mlpStalls)
	fmt.Println("\nEven with an oracle, OPT stalls twice as often as the MLP-aware")
	fmt.Println("policy: minimizing misses is not the same as minimizing stalls.")
}

// simulate runs the block stream through a 4-entry fully-associative
// cache under the given policy, assigning each filled block the provided
// quantized cost, and returns steady-state misses and stalls per
// iteration.
func simulate(stream []uint64, intervalOf []int, warmup, iters int,
	policy mlpcache.Policy, costs map[uint64]uint8) (misses, stalls float64) {

	c := mlpcache.NewCache(mlpcache.CacheConfig{Sets: 1, Assoc: 4, BlockBytes: 1}, policy)
	seen := map[int]bool{}
	perIter := 5 // intervals per iteration
	for i, b := range stream {
		if c.Probe(b, false) {
			continue
		}
		c.Fill(b, costs[b], false)
		if intervalOf[i] >= warmup*perIter {
			misses++
			if !seen[intervalOf[i]] {
				seen[intervalOf[i]] = true
				stalls++
			}
		}
	}
	n := float64(iters - warmup)
	return misses / n, stalls / n
}

// analyzeOPT turns an offline OPT run into steady-state per-iteration
// misses and stalls, grouping by interval like simulate does.
func analyzeOPT(res mlpcache.OfflineResult, intervalOf []int, warmup, iters int) (float64, float64) {
	const perIter = 5
	seen := map[int]bool{}
	var misses, stalls float64
	for i, acc := range res.Trace {
		if acc.Hit || intervalOf[i] < warmup*perIter {
			continue
		}
		misses++
		if !seen[intervalOf[i]] {
			seen[intervalOf[i]] = true
			stalls++
		}
	}
	n := float64(iters - warmup)
	return misses / n, stalls / n
}
